package exec

import (
	"fmt"
	"math"

	"repro/internal/bitset"
	"repro/internal/cache"
	"repro/internal/coherence/prefetch"
	"repro/internal/core"
	"repro/internal/craft"
	"repro/internal/fault"
	"repro/internal/ir"
	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/pfq"
	"repro/internal/shmem"
	"repro/internal/stats"
	"repro/internal/trace"
)

// peState is one processing element: its cycle clock, cache, prefetch
// queue, scalar registers and induction-variable environment. All value
// state is slot-indexed through the program's symbol table (dense slices,
// no string-keyed maps): the engine executes the compiled mirror tree
// (compile.go), so its hot path allocates nothing per simulated access.
type peState struct {
	id    int
	eng   *Engine
	now   int64
	cache *cache.Cache
	pq    *pfq.Queue
	stats stats.Stats

	// sess is non-nil only while this PE runs inside a concurrent torus
	// epoch: tick() publishes the PE's clock through it so lower-numbered
	// PEs' progress unblocks higher-numbered PEs' link commits promptly.
	sess *noc.Session

	// tr is the transport this PE charges remote traffic through: the
	// engine default (net, or nil under the flat topology), the
	// conservative-PDES session, or — optimistic epochs — the PE's private
	// speculation recorder / rollback re-execution memo (spec.go).
	tr noc.Transport

	// spec marks that the PE is executing a speculative torus epoch (or
	// re-executing it after a rollback): coherence-oracle hits are buffered
	// in pendViol until the epoch commits, and every memory write first
	// logs the word's previous bits in undo so a mis-speculation can be
	// rolled back. Both slices are engine-reused across epochs.
	spec     bool
	pendViol []fault.Violation
	undo     []memUndo

	// consumed/filled are the speculation's capture logs, reset at every
	// speculative epoch entry. consumed is the set of shared words whose
	// value or generation the PE's chunk consumed (every readMem path ends
	// in oracleCheck, which records it): the validation phase convicts the
	// PE if any of them was written by another PE this epoch, since the
	// concurrent read raced. filled lists the line addresses the chunk
	// installed (demand fills and vector-prefetch gets): those captured
	// whole lines from racing memory, including neighbor words the PE never
	// consumed, so clean commits repair them from canonical memory instead
	// of rolling back (spec.go). consumed is allocated on the first
	// speculative epoch; both are engine-reused.
	consumed *bitset.Sparse
	filled   []int64

	// scalars holds the PE-private scalar values, indexed by scalar slot;
	// scalarWritten marks the slots this PE has ever stored to (the set the
	// serial-epoch barrier broadcasts, mirroring the map-key semantics the
	// engine had when scalars were a map).
	scalars       []float64
	scalarWritten []bool

	// env/bound is the integer-variable environment, indexed by var slot:
	// params, induction variables and prefetch pull variables. bound mirrors
	// map-key presence; reading an unbound slot is an engine bug and panics
	// with the same diagnostic the map-based evaluator raised.
	env   []int64
	bound []bool

	// regA/regV model compiler register allocation as a linear-scan window:
	// within one iteration of the innermost executing loop, repeated loads
	// of the same address are register hits costing nothing — in every mode,
	// exactly as the Fortran compiler eliminates redundant loads in both the
	// BASE and CCDP codes. Truncated at each iteration boundary; updated by
	// the PE's own stores. The window holds the handful of addresses one
	// iteration touches, so a scan beats any map.
	regA []int64
	regV []float64

	// buffered records the cache lines fetched by a vector prefetch in the
	// current epoch, keyed by line index (addr/LineWords): shmem_get lands
	// the data in a LOCAL buffer, so a line evicted from the cache refills
	// from local DRAM, not from the remote home. Reset at every epoch
	// boundary (the buffer contents are only coherent for the epoch the get
	// served).
	buffered *bitset.Sparse

	// Race-detection address sets (shared arrays only), per epoch; non-nil
	// only while a parallel epoch runs under Options.DetectRaces. raceRd and
	// raceWr are the lazily-allocated backing sets reads/writes point at.
	reads, writes  *bitset.Sparse
	raceRd, raceWr *bitset.Sparse

	// idxScratch holds one reference's subscript values during address
	// computation; vpAddrs accumulates a vector prefetch's address list;
	// shScratch is this PE's reusable shmem transfer state.
	idxScratch []int64
	vpAddrs    []int64
	shScratch  *shmem.Scratch

	// hwPref is this PE's runtime prefetcher (HWDIR modes with
	// machine.HWPrefetcher set; nil otherwise). hwPrefetched tracks the
	// line indices it ever filled, for the usefulness count; prefScratch
	// is the suggestion buffer Observe appends into.
	hwPref       prefetch.Prefetcher
	hwPrefetched *bitset.Sparse
	prefScratch  []int64

	// staleByRef attributes stale-value reads to reference sites
	// (Options.TrackStaleRefs).
	staleByRef map[ir.RefID]int64

	// crossInv is the current epoch's cross-domain refetch ranges (the
	// software invalidation plan), set at epoch entry on domained CCDP
	// runs: the compiler's prefetch-skip filter (domainSkip). nil
	// otherwise.
	crossInv []invRange

	// fault is this PE's seeded fault stream; nil in a fault-free run.
	// shFaults is the prefetch-drop/late hook pair handed to shmem.
	fault    *fault.PE
	shFaults *shmem.Faults
	// demoted counts bypass-fetch fallbacks, checked against the per-PE
	// demotion budget when faults are enabled.
	demoted int64

	// trace, when non-nil, receives one event per memory operation.
	trace *trace.Collector
}

// runDoall executes the PE's share of a parallel epoch.
func (pe *peState) runDoall(l *cLoop) error {
	mp := pe.eng.c.Machine
	lo := pe.evalAffine(&l.lo)
	hi := pe.evalAffine(&l.hi)
	step := l.step

	// Prologue: vector prefetches hoisted to the epoch entry. A vector
	// over the DOALL's own variable covers only this PE's chunk.
	chunk := craft.Chunk{Lo: lo, Hi: hi}
	if l.sched == ir.SchedStatic && step == 1 {
		if l.alignExt > 0 {
			chunk = craft.AlignedChunk(lo, hi, l.alignExt, mp.NumPE, pe.id)
		} else {
			chunk = craft.BlockChunk(lo, hi, mp.NumPE, pe.id)
		}
	}
	for _, s := range l.prologue {
		if vp, ok := s.(*cVP); ok {
			if vp.varSlot == l.varSlot {
				pe.vectorPrefetch(vp, chunk.Lo, chunk.Hi, step)
			} else {
				pe.vectorPrefetch(vp, pe.evalAffine(&vp.lo), pe.evalAffine(&vp.hi), vp.step)
			}
			continue
		}
		if err := pe.runStmt(s); err != nil {
			return err
		}
	}

	switch {
	case l.sched == ir.SchedDynamic:
		// Deterministic round-robin stand-in for runtime self-scheduling.
		for it := lo; it <= hi; it += step {
			if int((it-lo)/step)%mp.NumPE != pe.id {
				continue
			}
			pe.tick()
			pe.now += mp.DynamicSchedCost + mp.LoopIterCost
			pe.env[l.varSlot] = it
			pe.bound[l.varSlot] = true
			pe.clearRegs()
			if err := pe.runStmts(l.body); err != nil {
				return err
			}
		}
	default:
		if step != 1 {
			return fmt.Errorf("exec: DOALL %q with step %d unsupported", l.src.Var, step)
		}
		if chunk.Empty() {
			break
		}
		for it := chunk.Lo; it <= chunk.Hi; it++ {
			pe.tick()
			pe.now += mp.LoopIterCost
			pe.env[l.varSlot] = it
			pe.bound[l.varSlot] = true
			pe.clearRegs()
			if err := pe.runStmts(l.body); err != nil {
				return err
			}
		}
	}
	pe.bound[l.varSlot] = false
	return nil
}

func (pe *peState) clearRegs() {
	pe.regA = pe.regA[:0]
	pe.regV = pe.regV[:0]
}

// tick publishes the PE's clock to the torus PDES session (no-op outside
// concurrent torus epochs). Frequency affects only how soon other PEs'
// commits unblock, never any simulated result.
func (pe *peState) tick() {
	if s := pe.sess; s != nil {
		s.Publish(pe.id, pe.now)
	}
}

func (pe *peState) runStmts(body []cStmt) error {
	for _, s := range body {
		if err := pe.runStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (pe *peState) runStmt(s cStmt) error {
	mp := pe.eng.c.Machine
	switch st := s.(type) {
	case *cLoop:
		if st.parallel {
			return fmt.Errorf("exec: nested parallel loop %q", st.src.Var)
		}
		return pe.runSerialLoop(st)
	case *cAssign:
		pe.now += mp.StmtOverheadCost
		v := pe.evalExpr(st.rhs)
		pe.writeRef(st.lhs, v)
		return nil
	case *cIf:
		pe.now += mp.StmtOverheadCost
		l := pe.evalExpr(st.l)
		r := pe.evalExpr(st.r)
		if evalCmp(st.op, l, r) {
			return pe.runStmts(st.then)
		}
		return pe.runStmts(st.els)
	case *cCall:
		if st.body == nil {
			return fmt.Errorf("exec: call to undefined routine %q", st.name)
		}
		return pe.runStmts(*st.body)
	case *cPrefetch:
		pe.issuePrefetch(st.target)
		return nil
	case *cVP:
		pe.vectorPrefetch(st, pe.evalAffine(&st.lo), pe.evalAffine(&st.hi), st.step)
		return nil
	default:
		return fmt.Errorf("exec: unknown statement %T", s)
	}
}

// runSerialLoop interprets a serial loop, driving any software-pipelined
// prefetch streams attached to it.
func (pe *peState) runSerialLoop(l *cLoop) error {
	mp := pe.eng.c.Machine
	lo := pe.evalAffine(&l.lo)
	hi := pe.evalAffine(&l.hi)
	step := l.step
	if hi < lo {
		return nil
	}

	// Pipeline prologue: prime `ahead` iterations per stream.
	for i := range l.pipelined {
		pp := &l.pipelined[i]
		for d := int64(0); d < pp.ahead; d++ {
			it := lo + d*step
			if it > hi {
				break
			}
			pe.issuePrefetchAt(pp.target, l.varSlot, it)
		}
	}

	for it := lo; it <= hi; it += step {
		pe.tick()
		pe.now += mp.LoopIterCost
		pe.env[l.varSlot] = it
		pe.bound[l.varSlot] = true
		pe.clearRegs()
		// Steady state: prefetch `ahead` iterations forward.
		for i := range l.pipelined {
			pp := &l.pipelined[i]
			fut := it + pp.ahead*step
			if fut <= hi {
				pe.issuePrefetchAt(pp.target, l.varSlot, fut)
			}
		}
		if err := pe.runStmts(l.body); err != nil {
			return err
		}
	}
	pe.bound[l.varSlot] = false
	return nil
}

// --- Value evaluation -----------------------------------------------------

func (pe *peState) evalExpr(e cExpr) float64 {
	mp := pe.eng.c.Machine
	switch x := e.(type) {
	case *cNum:
		return x.v
	case *cIVal:
		pe.now++
		return float64(pe.evalAffine(&x.a))
	case *cLoad:
		return pe.readRef(x.ref)
	case *cBin:
		l := pe.evalExpr(x.l)
		r := pe.evalExpr(x.r)
		pe.now += mp.FlopCost
		pe.stats.FlopCycles += mp.FlopCost
		switch x.op {
		case ir.OpAdd:
			return l + r
		case ir.OpSub:
			return l - r
		case ir.OpMul:
			return l * r
		case ir.OpDiv:
			return l / r
		case ir.OpMin:
			return math.Min(l, r)
		case ir.OpMax:
			return math.Max(l, r)
		}
	case *cUn:
		v := pe.evalExpr(x.x)
		switch x.op {
		case ir.OpNeg:
			pe.now += mp.FlopCost
			pe.stats.FlopCycles += mp.FlopCost
			return -v
		case ir.OpAbs:
			pe.now += mp.FlopCost
			pe.stats.FlopCycles += mp.FlopCost
			return math.Abs(v)
		case ir.OpSqrt:
			pe.now += 8 * mp.FlopCost
			pe.stats.FlopCycles += 8 * mp.FlopCost
			return math.Sqrt(v)
		}
	}
	panic(fmt.Sprintf("exec: unknown expression %T", e))
}

func evalCmp(op ir.CmpOp, l, r float64) bool {
	switch op {
	case ir.CmpLT:
		return l < r
	case ir.CmpLE:
		return l <= r
	case ir.CmpGT:
		return l > r
	case ir.CmpGE:
		return l >= r
	case ir.CmpEQ:
		return l == r
	case ir.CmpNE:
		return l != r
	}
	return false
}

func (pe *peState) evalAffine(a *caff) int64 {
	return a.eval(pe.env, pe.bound)
}

// addrOf resolves an array reference to a word address. Subscripts are all
// evaluated before any bound is checked, and bounds are checked in
// dimension order — the exact panic precedence of mem.AddrOf over
// MustEval'd indices, which it replaces.
func (pe *peState) addrOf(r *cRef) int64 {
	idx := pe.idxScratch[:len(r.dims)]
	for d := range r.dims {
		idx[d] = r.dims[d].idx.eval(pe.env, pe.bound)
	}
	addr := r.base
	for d := range r.dims {
		if idx[d] < 0 || idx[d] >= r.dims[d].extent {
			mem.BoundsPanic(r.arr, d, idx[d])
		}
		addr += idx[d] * r.dims[d].stride
	}
	return addr
}

// --- Register window --------------------------------------------------------

func (pe *peState) regLookup(addr int64) (float64, bool) {
	for i, a := range pe.regA {
		if a == addr {
			return pe.regV[i], true
		}
	}
	return 0, false
}

func (pe *peState) regInsert(addr int64, v float64) {
	pe.regA = append(pe.regA, addr)
	pe.regV = append(pe.regV, v)
}

// regUpdate refreshes an address already in the window (a store updates the
// register copy only if one exists — no-insert, like the map it replaces).
func (pe *peState) regUpdate(addr int64, v float64) {
	for i, a := range pe.regA {
		if a == addr {
			pe.regV[i] = v
			return
		}
	}
}

// --- Memory reference paths ------------------------------------------------

// readRef performs a read through the mode-appropriate path.
func (pe *peState) readRef(r *cRef) float64 {
	if r.isScalar() {
		return pe.scalars[r.scalar]
	}
	addr := pe.addrOf(r)
	if pe.reads != nil && r.shared {
		pe.reads.Add(addr)
	}

	// Register reuse: the compiler keeps a value loaded earlier in the same
	// iteration in a register (all modes).
	if v, ok := pe.regLookup(addr); ok {
		pe.stats.RegisterHits++
		if pe.trace != nil {
			pe.trace.Record(addr, pe.now, trace.KindRegister)
		}
		return v
	}
	v := pe.readMem(r, addr)
	pe.regInsert(addr, v)
	return v
}

// readMem performs the actual memory access for a read that missed the
// register window. Every path ends in oracleCheck: the coherence safety
// oracle verifies the consumed word's generation against memory on every
// read the simulated program makes.
func (pe *peState) readMem(r *cRef, addr int64) float64 {
	// Hardware coherence arena: every cached access goes through the
	// directory protocol instead (hw.go). The HW pipelines never mark refs
	// non-cached or bypass, so no software path is bypassed here.
	if pe.eng.hw != nil {
		return pe.readMemHW(r, addr)
	}
	mp := pe.eng.c.Machine
	m := pe.eng.mem
	local := m.OwnerOf(addr) == pe.id

	// BASE: CRAFT shared data is never cached.
	if r.nonCached {
		pe.stats.NonCachedRefs++
		pe.now += mp.CraftSharedAccessCost
		if local {
			pe.now += mp.LocalReadCost // read-ahead buffered local DRAM read
			pe.stats.LocalReads++
			pe.record(addr, trace.KindLocalRead)
		} else {
			pe.chargeRemoteRead(addr, 1)
			pe.record(addr, trace.KindRemote)
		}
		v, g := m.Read(addr)
		pe.oracleCheck(r, addr, g)
		return v
	}

	// Bypass-cache fetch: stale read not worth prefetching, or dropped
	// prefetch (paper §3.2) — read memory directly around the cache.
	if r.bypass {
		pe.stats.BypassReads++
		if local {
			pe.now += mp.LocalReadCost
			pe.stats.LocalReads++
			pe.record(addr, trace.KindLocalRead)
		} else {
			pe.chargeRemoteRead(addr, 1)
			pe.record(addr, trace.KindRemote)
		}
		v, g := m.Read(addr)
		pe.oracleCheck(r, addr, g)
		return v
	}

	// Forced-eviction fault: the line is knocked out (conflict with
	// interleaved private data) just before the processor consults it.
	if pe.fault != nil && pe.cache.Contains(addr) && pe.fault.EvictLine() {
		pe.cache.InvalidateRange(addr, addr)
	}

	// Cached path.
	demoted := false
	if val, gen, readyAt, hit := pe.cache.Lookup(addr); hit {
		pe.now += mp.HitCost
		if readyAt > pe.now {
			pe.now = readyAt
		}
		if pe.fault != nil && pe.eng.c.Mode != core.ModeIncoherent && gen != m.Gen(addr) {
			// Degraded mode: never consume a stale hit — drop the line
			// and fall through to a fresh demand fetch (§3.2).
			pe.cache.InvalidateRange(addr, addr)
			pe.demote()
			demoted = true
		} else {
			pe.oracleCheck(r, addr, gen)
			pe.record(addr, trace.KindHit)
			return val
		}
	}

	// Prefetch queue: the compiler scheduled this word ahead of time.
	if e, ok := pe.pq.Take(addr); ok {
		pe.now += mp.PrefetchExtractCost
		if e.ReadyAt > pe.now {
			pe.stats.PrefetchLate++
			pe.now = e.ReadyAt
		}
		if pe.fault != nil && pe.eng.c.Mode != core.ModeIncoherent && e.Gen != m.Gen(addr) {
			// Degraded mode: discard the stale entry, refetch below.
			pe.demote()
		} else {
			pe.oracleCheck(r, addr, e.Gen)
			pe.record(addr, trace.KindPrefetched)
			return e.Val
		}
	} else if r.prefetched && !demoted && !pe.domainSkip(addr) {
		// A scheduled prefetch never arrived (queue overflow, or an
		// injected drop): the reference demotes to the demand fetch
		// below, which is exactly the paper's bypass fallback. Words the
		// domain-aware compiler deliberately left unprefetched
		// (domainSkip) are not demotions — hardware kept them fresh.
		pe.demote()
	}

	lineAddr := addr - addr%mp.LineWords
	if local || pe.buffered.Contains(lineAddr/mp.LineWords) {
		// Local miss (or a vector-buffered remote line): fill the line
		// from local DRAM.
		pe.now += mp.LocalMemCost
		pe.stats.LocalReads++
		pe.installLine(addr, pe.now)
		pe.record(addr, trace.KindMiss)
		v, g := m.Read(addr)
		pe.oracleCheck(r, addr, g)
		return v
	}

	// Remote word. The T3D does not cache remote memory: direct read —
	// except in the deliberately broken INCOHERENT mode, which caches it
	// with no coherence action (the failure the paper's scheme prevents).
	if pe.eng.c.Mode == core.ModeIncoherent {
		pe.chargeRemoteRead(addr, mp.LineWords) // caches it: a whole line crosses the wire
		pe.installLine(addr, pe.now)
		pe.record(addr, trace.KindRemote)
		v, g := m.Read(addr)
		pe.oracleCheck(r, addr, g)
		return v
	}
	pe.chargeRemoteRead(addr, 1)
	pe.record(addr, trace.KindRemote)
	v, g := m.Read(addr)
	pe.oracleCheck(r, addr, g)
	return v
}

// chargeRemoteRead advances the PE clock over one blocking remote read of
// `words` payload words from addr's home PE. Flat: the constant
// RemoteReadCost (plus any injected spike). Torus: a routed round trip
// whose latency depends on hop distance and link contention; an injected
// spike becomes a hotspot holding the home's reply link, so it also delays
// unrelated traffic routed through that link.
func (pe *peState) chargeRemoteRead(addr, words int64) {
	mp := pe.eng.c.Machine
	home := pe.eng.mem.OwnerOf(addr)
	if tr := pe.tr; tr != nil {
		arrive, _ := tr.RoundTrip(pe.id, home, words, pe.now, pe.remoteSpike())
		pe.now = arrive
	} else {
		pe.now += mp.RemoteReadCostFor(pe.id, home) + pe.remoteSpike()
	}
	pe.stats.RemoteReads++
	pe.countDomainWords(home, words)
}

// countDomainWords attributes words moved between this PE and a home PE to
// the near- or far-tier traffic counter on domain-aware machines. A no-op
// everywhere else, so t3d statistics stay byte-identical.
func (pe *peState) countDomainWords(home int, words int64) {
	if !pe.eng.domAware {
		return
	}
	if pe.eng.c.Machine.SameDomain(pe.id, home) {
		pe.stats.DomainNearWords += words
	} else {
		pe.stats.DomainFarWords += words
	}
}

// domainSkip reports whether the domain-aware compiler suppresses a
// scheduled prefetch of addr on this PE: the word is homed inside the PE's
// own coherence domain and lies outside the PE's cross-domain refetch
// ranges for the current epoch, so any cached copy of it is hardware-fresh
// and a demand miss costs only the near tier — a prefetch would waste
// issue slots and queue capacity. Cross-domain-homed words keep their
// prefetches (latency hiding), as do near-homed words a cross-domain PE
// may have dirtied (they must be refetched coherently).
func (pe *peState) domainSkip(addr int64) bool {
	if !pe.eng.domains {
		return false
	}
	if !pe.eng.c.Machine.SameDomain(pe.id, pe.eng.mem.OwnerOf(addr)) {
		return false
	}
	for _, r := range pe.crossInv {
		if addr >= r.lo && addr <= r.hi {
			return false
		}
	}
	return true
}

// chargeRemoteWrite charges one buffered, non-blocking remote store: the PE
// pays only the constant injection cost, but over a torus the store's
// packet is still booked along the route so it contends with other traffic.
func (pe *peState) chargeRemoteWrite(addr int64) {
	home := pe.eng.mem.OwnerOf(addr)
	if tr := pe.tr; tr != nil {
		tr.Send(pe.id, home, 1, pe.now, 0)
	}
	pe.now += pe.eng.c.Machine.RemoteWriteCostFor(pe.id, home)
	pe.stats.RemoteWrites++
	pe.countDomainWords(home, 1)
}

// oracleCheck is the coherence safety oracle: every word the simulated
// program consumes must carry memory's current generation for its address.
// The fast path is one load and a compare.
func (pe *peState) oracleCheck(r *cRef, addr int64, gen uint32) {
	if pe.spec {
		pe.consumed.Add(addr)
	}
	if gen == pe.eng.mem.Gen(addr) {
		return
	}
	pe.eng.reportStale(pe, r.src, addr, gen)
}

// remoteSpike draws an injected remote-latency spike (0 when fault-free).
func (pe *peState) remoteSpike() int64 {
	if pe.fault == nil {
		return 0
	}
	return pe.fault.RemoteSpike()
}

// demote counts a bypass-fetch fallback and enforces the per-PE retry
// budget when faults are enabled. Exhausting the budget panics; the engine
// recovers it into a loud run failure naming the PE.
func (pe *peState) demote() {
	pe.stats.Demotions++
	pe.demoted++
	if pe.fault != nil && pe.demoted > pe.fault.MaxDemotions() {
		panic(fmt.Sprintf("fault: demotion budget exhausted after %d bypass fallbacks", pe.demoted))
	}
}

// writeRef performs a write (write-through, no-write-allocate).
func (pe *peState) writeRef(r *cRef, v float64) {
	if r.isScalar() {
		pe.scalars[r.scalar] = v
		pe.scalarWritten[r.scalar] = true
		return
	}
	mp := pe.eng.c.Machine
	m := pe.eng.mem
	addr := pe.addrOf(r)
	if pe.writes != nil && r.shared {
		pe.writes.Add(addr)
	}
	local := m.OwnerOf(addr) == pe.id

	pe.regUpdate(addr, v)
	pe.record(addr, trace.KindWrite)
	if pe.spec {
		b, g := m.PeekBits(addr)
		pe.undo = append(pe.undo, memUndo{addr: addr, preBits: b, preGen: g})
	}
	gen := m.Write(addr, v)
	if pe.spec {
		u := &pe.undo[len(pe.undo)-1]
		u.postBits, u.postGen = math.Float64bits(v), gen
	}

	// Hardware coherence arena: memory is current (write-through above);
	// the directory invalidates every other cached copy (hw.go).
	if pe.eng.hw != nil {
		pe.writeHW(addr, v, gen, local)
		return
	}

	if r.nonCached {
		pe.stats.NonCachedRefs++
		pe.now += mp.CraftSharedAccessCost
		if local {
			pe.now += mp.LocalWriteCost
			pe.stats.LocalWrites++
		} else {
			pe.chargeRemoteWrite(addr)
		}
		return
	}
	if local {
		pe.now += mp.LocalWriteCost
		pe.stats.LocalWrites++
	} else {
		pe.chargeRemoteWrite(addr)
	}
	// Keep the writer's own cached copy current.
	pe.cache.UpdateWord(addr, v, gen)
}

// record emits one trace event when tracing is enabled.
func (pe *peState) record(addr int64, kind trace.Kind) {
	if pe.trace != nil {
		pe.trace.Record(addr, pe.now, kind)
	}
}

// installLine fills the cache line containing addr from memory.
func (pe *peState) installLine(addr int64, readyAt int64) {
	m := pe.eng.mem
	lw := pe.eng.c.Machine.LineWords
	la := addr - addr%lw
	sc := pe.shScratch
	vals, gens := sc.LineBuffers()
	for k := int64(0); k < lw; k++ {
		if la+k < m.Words() {
			vals[k], gens[k] = m.Read(la + k)
		} else {
			vals[k], gens[k] = 0, 0
		}
	}
	pe.cache.Install(la, vals, gens, readyAt)
	if pe.spec {
		pe.logFill(la)
	}
}

// logFill records a speculative line fill for the validation phase's
// capture repair. Consecutive duplicates (a line walked word by word)
// collapse; non-consecutive ones (evict then refill) are harmless because
// the repair is idempotent.
func (pe *peState) logFill(la int64) {
	if n := len(pe.filled); n > 0 && pe.filled[n-1] == la {
		return
	}
	pe.filled = append(pe.filled, la)
}

// --- Prefetch operations ----------------------------------------------------

// issuePrefetch issues a single-word prefetch for the target at the current
// environment.
func (pe *peState) issuePrefetch(target *cRef) {
	pe.issueAt(pe.addrOf(target))
}

// issuePrefetchAt issues a prefetch for the target with the loop variable at
// slot v bound to iteration it (software pipelining's future-iteration
// address).
func (pe *peState) issuePrefetchAt(target *cRef, v int32, it int64) {
	oldV, oldB := pe.env[v], pe.bound[v]
	pe.env[v], pe.bound[v] = it, true
	addr := pe.addrOf(target)
	pe.env[v], pe.bound[v] = oldV, oldB
	pe.issueAt(addr)
}

func (pe *peState) issueAt(addr int64) {
	mp := pe.eng.c.Machine
	m := pe.eng.mem
	if pe.domainSkip(addr) {
		// The domain-aware compiler emitted no prefetch for this word at
		// all: it is near-homed and hardware-fresh, so nothing is issued
		// and nothing is charged.
		return
	}
	pe.now += mp.PrefetchIssueCost
	if pe.fault != nil && pe.fault.DropPrefetch() {
		// The prefetch packet is lost in flight: the issue cost is paid
		// but nothing arrives; the consuming read demotes (§3.2).
		return
	}
	var readyAt int64
	owner := m.OwnerOf(addr)
	if owner == pe.id {
		lat := mp.LocalMemCost
		if pe.fault != nil {
			lat += pe.fault.LateDelay()
		}
		readyAt = pe.now + lat
	} else if tr := pe.tr; tr != nil {
		arrive, wait := tr.RoundTrip(pe.id, owner, 1, pe.now, 0)
		if wait > tr.DropWaitCycles() {
			// Congestion timeout: the network held the prefetch longer than
			// the hardware keeps the request alive, so it never completes.
			// The consuming read will demote to a bypass fetch (§3.2).
			pe.stats.NetDrops++
			return
		}
		if pe.fault != nil {
			arrive += pe.fault.LateDelay()
		}
		readyAt = arrive
	} else {
		lat := mp.RemoteReadCostFor(pe.id, owner)
		if pe.fault != nil {
			lat += pe.fault.LateDelay()
		}
		readyAt = pe.now + lat
	}
	if owner != pe.id {
		pe.countDomainWords(owner, 1)
	}
	v, g := m.Read(addr)
	pe.pq.Issue(pfq.Entry{Addr: addr, Val: v, Gen: g, ReadyAt: readyAt})
}

// vectorPrefetch performs one shmem_get realizing a vector prefetch over
// the pulled loop range [lo,hi] step step.
func (pe *peState) vectorPrefetch(vp *cVP, lo, hi, step int64) {
	if hi < lo {
		return
	}
	pe.vpAddrs = pe.vpAddrs[:0]
	oldV, oldB := pe.env[vp.varSlot], pe.bound[vp.varSlot]
	pe.bound[vp.varSlot] = true
	for v := lo; v <= hi; v += step {
		pe.env[vp.varSlot] = v
		a := pe.addrOf(vp.target)
		if pe.domainSkip(a) {
			// The domain-aware compiler pulls only the words hardware
			// cannot keep fresh; near-homed hardware-coherent words are
			// left out of the gather entirely.
			continue
		}
		pe.vpAddrs = append(pe.vpAddrs, a)
	}
	pe.env[vp.varSlot], pe.bound[vp.varSlot] = oldV, oldB
	if len(pe.vpAddrs) == 0 {
		return
	}
	cost, droppedLines := shmem.GetOverNet(pe.eng.mem, pe.cache, pe.eng.c.Machine, pe.tr, pe.id, pe.vpAddrs, pe.now, pe.shFaults, pe.shScratch)
	pe.now += cost
	lw := pe.eng.c.Machine.LineWords
	for _, a := range pe.vpAddrs {
		la := a - a%lw
		if droppedLines.Contains(la) {
			// Lost in flight: the line is neither cached nor locally
			// buffered, so its reads fall back to demand remote fetches.
			continue
		}
		pe.buffered.Add(la / lw)
		if pe.spec {
			pe.logFill(la)
		}
	}
	if pe.eng.domAware {
		for _, a := range pe.vpAddrs {
			if home := pe.eng.mem.OwnerOf(a); home != pe.id {
				pe.countDomainWords(home, 1)
			}
		}
	}
	pe.stats.VectorPrefetches++
	pe.stats.VectorWords += int64(len(pe.vpAddrs))
}
