package exec

import (
	"fmt"
	"math"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/craft"
	"repro/internal/expr"
	"repro/internal/fault"
	"repro/internal/ir"
	"repro/internal/mem"
	"repro/internal/pfq"
	"repro/internal/shmem"
	"repro/internal/stats"
	"repro/internal/trace"
)

// peState is one processing element: its cycle clock, cache, prefetch
// queue, scalar registers and induction-variable environment.
type peState struct {
	id      int
	eng     *engine
	now     int64
	cache   *cache.Cache
	pq      *pfq.Queue
	scalars map[string]float64
	env     map[string]int64
	stats   stats.Stats

	// regs models compiler register allocation: within one iteration of the
	// innermost executing loop, repeated loads of the same address are
	// register hits costing nothing — in every mode, exactly as the Fortran
	// compiler eliminates redundant loads in both the BASE and CCDP codes.
	// Cleared at each iteration boundary; updated by the PE's own stores.
	regs map[int64]float64

	// buffered records the cache lines fetched by a vector prefetch in the
	// current epoch: shmem_get lands the data in a LOCAL buffer, so a line
	// evicted from the cache refills from local DRAM, not from the remote
	// home. Cleared at every epoch boundary (the buffer contents are only
	// coherent for the epoch the get served).
	buffered map[int64]struct{}

	// Race-detection address sets (shared arrays only), per epoch.
	reads, writes map[int64]struct{}

	// staleByRef attributes stale-value reads to reference sites
	// (Options.TrackStaleRefs).
	staleByRef map[ir.RefID]int64

	// fault is this PE's seeded fault stream; nil in a fault-free run.
	fault *fault.PE
	// demoted counts bypass-fetch fallbacks, checked against the per-PE
	// demotion budget when faults are enabled.
	demoted int64

	// trace, when non-nil, receives one event per memory operation.
	trace *trace.Collector
}

// runDoall executes the PE's share of a parallel epoch.
func (pe *peState) runDoall(l *ir.Loop) error {
	mp := pe.eng.c.Machine
	lo := pe.evalAffine(l.Lo)
	hi := pe.evalAffine(l.Hi)
	step := l.Step.ConstPart()

	// Prologue: vector prefetches hoisted to the epoch entry. A vector
	// over the DOALL's own variable covers only this PE's chunk.
	chunk := craft.Chunk{Lo: lo, Hi: hi}
	if l.Sched == ir.SchedStatic && step == 1 {
		if l.AlignExtent > 0 {
			chunk = craft.AlignedChunk(lo, hi, l.AlignExtent, mp.NumPE, pe.id)
		} else {
			chunk = craft.BlockChunk(lo, hi, mp.NumPE, pe.id)
		}
	}
	for _, s := range l.Prologue {
		if vp, ok := s.(*ir.VectorPrefetch); ok {
			if vp.LoopVar == l.Var {
				pe.vectorPrefetch(vp, chunk.Lo, chunk.Hi, step)
			} else {
				pe.vectorPrefetch(vp, pe.evalAffine(vp.Lo), pe.evalAffine(vp.Hi), vp.Step.ConstPart())
			}
			continue
		}
		if err := pe.runStmt(s); err != nil {
			return err
		}
	}

	switch {
	case l.Sched == ir.SchedDynamic:
		// Deterministic round-robin stand-in for runtime self-scheduling.
		for it := lo; it <= hi; it += step {
			if int((it-lo)/step)%mp.NumPE != pe.id {
				continue
			}
			pe.now += mp.DynamicSchedCost + mp.LoopIterCost
			pe.env[l.Var] = it
			pe.clearRegs()
			if err := pe.runStmts(l.Body); err != nil {
				return err
			}
		}
	default:
		if step != 1 {
			return fmt.Errorf("exec: DOALL %q with step %d unsupported", l.Var, step)
		}
		if chunk.Empty() {
			break
		}
		for it := chunk.Lo; it <= chunk.Hi; it++ {
			pe.now += mp.LoopIterCost
			pe.env[l.Var] = it
			pe.clearRegs()
			if err := pe.runStmts(l.Body); err != nil {
				return err
			}
		}
	}
	delete(pe.env, l.Var)
	return nil
}

func (pe *peState) clearRegs() {
	for k := range pe.regs {
		delete(pe.regs, k)
	}
}

func (pe *peState) runStmts(body []ir.Stmt) error {
	for _, s := range body {
		if err := pe.runStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (pe *peState) runStmt(s ir.Stmt) error {
	mp := pe.eng.c.Machine
	switch st := s.(type) {
	case *ir.Loop:
		if st.Parallel {
			return fmt.Errorf("exec: nested parallel loop %q", st.Var)
		}
		return pe.runSerialLoop(st)
	case *ir.Assign:
		pe.now += mp.StmtOverheadCost
		v := pe.evalExpr(st.RHS)
		pe.writeRef(st.LHS, v)
		return nil
	case *ir.If:
		pe.now += mp.StmtOverheadCost
		l := pe.evalExpr(st.Cond.L)
		r := pe.evalExpr(st.Cond.R)
		if evalCmp(st.Cond.Op, l, r) {
			return pe.runStmts(st.Then)
		}
		return pe.runStmts(st.Else)
	case *ir.Call:
		rt := pe.eng.c.Prog.Routine(st.Name)
		if rt == nil {
			return fmt.Errorf("exec: call to undefined routine %q", st.Name)
		}
		return pe.runStmts(rt.Body)
	case *ir.Prefetch:
		pe.issuePrefetch(st.Target)
		return nil
	case *ir.VectorPrefetch:
		pe.vectorPrefetch(st, pe.evalAffine(st.Lo), pe.evalAffine(st.Hi), st.Step.ConstPart())
		return nil
	default:
		return fmt.Errorf("exec: unknown statement %T", s)
	}
}

// runSerialLoop interprets a serial loop, driving any software-pipelined
// prefetch streams attached to it.
func (pe *peState) runSerialLoop(l *ir.Loop) error {
	mp := pe.eng.c.Machine
	lo := pe.evalAffine(l.Lo)
	hi := pe.evalAffine(l.Hi)
	step := l.Step.ConstPart()
	if hi < lo {
		return nil
	}

	// Pipeline prologue: prime `ahead` iterations per stream.
	for _, pp := range l.Pipelined {
		for d := int64(0); d < pp.Ahead; d++ {
			it := lo + d*step
			if it > hi {
				break
			}
			pe.issuePrefetchAt(pp.Target, l.Var, it)
		}
	}

	for it := lo; it <= hi; it += step {
		pe.now += mp.LoopIterCost
		pe.env[l.Var] = it
		pe.clearRegs()
		// Steady state: prefetch `ahead` iterations forward.
		for _, pp := range l.Pipelined {
			fut := it + pp.Ahead*step
			if fut <= hi {
				pe.issuePrefetchAt(pp.Target, l.Var, fut)
			}
		}
		if err := pe.runStmts(l.Body); err != nil {
			return err
		}
	}
	delete(pe.env, l.Var)
	return nil
}

// --- Value evaluation -----------------------------------------------------

func (pe *peState) evalExpr(e ir.Expr) float64 {
	mp := pe.eng.c.Machine
	switch x := e.(type) {
	case ir.Num:
		return x.V
	case ir.IVal:
		pe.now++
		return float64(pe.evalAffine(x.A))
	case ir.Load:
		return pe.readRef(x.Ref)
	case ir.Bin:
		l := pe.evalExpr(x.L)
		r := pe.evalExpr(x.R)
		pe.now += mp.FlopCost
		pe.stats.FlopCycles += mp.FlopCost
		switch x.Op {
		case ir.OpAdd:
			return l + r
		case ir.OpSub:
			return l - r
		case ir.OpMul:
			return l * r
		case ir.OpDiv:
			return l / r
		case ir.OpMin:
			return math.Min(l, r)
		case ir.OpMax:
			return math.Max(l, r)
		}
	case ir.Un:
		v := pe.evalExpr(x.X)
		switch x.Op {
		case ir.OpNeg:
			pe.now += mp.FlopCost
			pe.stats.FlopCycles += mp.FlopCost
			return -v
		case ir.OpAbs:
			pe.now += mp.FlopCost
			pe.stats.FlopCycles += mp.FlopCost
			return math.Abs(v)
		case ir.OpSqrt:
			pe.now += 8 * mp.FlopCost
			pe.stats.FlopCycles += 8 * mp.FlopCost
			return math.Sqrt(v)
		}
	}
	panic(fmt.Sprintf("exec: unknown expression %T", e))
}

func evalCmp(op ir.CmpOp, l, r float64) bool {
	switch op {
	case ir.CmpLT:
		return l < r
	case ir.CmpLE:
		return l <= r
	case ir.CmpGT:
		return l > r
	case ir.CmpGE:
		return l >= r
	case ir.CmpEQ:
		return l == r
	case ir.CmpNE:
		return l != r
	}
	return false
}

func (pe *peState) evalAffine(a expr.Affine) int64 {
	return a.MustEval(pe.env)
}

// addrOf resolves an array reference to a word address.
func (pe *peState) addrOf(r *ir.Ref) int64 {
	idx := make([]int64, len(r.Index))
	for d := range r.Index {
		idx[d] = r.Index[d].MustEval(pe.env)
	}
	return mem.AddrOf(r.Array, idx)
}

// --- Memory reference paths ------------------------------------------------

// readRef performs a read through the mode-appropriate path.
func (pe *peState) readRef(r *ir.Ref) float64 {
	if r.IsScalar() {
		return pe.scalars[r.Scalar]
	}
	addr := pe.addrOf(r)
	if pe.reads != nil && r.Array.Shared {
		pe.reads[addr] = struct{}{}
	}

	// Register reuse: the compiler keeps a value loaded earlier in the same
	// iteration in a register (all modes).
	if v, ok := pe.regs[addr]; ok {
		pe.stats.RegisterHits++
		if pe.trace != nil {
			pe.trace.Record(addr, pe.now, trace.KindRegister)
		}
		return v
	}
	v := pe.readMem(r, addr)
	if pe.regs == nil {
		pe.regs = map[int64]float64{}
	}
	pe.regs[addr] = v
	return v
}

// readMem performs the actual memory access for a read that missed the
// register window. Every path ends in oracleCheck: the coherence safety
// oracle verifies the consumed word's generation against memory on every
// read the simulated program makes.
func (pe *peState) readMem(r *ir.Ref, addr int64) float64 {
	mp := pe.eng.c.Machine
	m := pe.eng.mem
	local := m.OwnerOf(addr) == pe.id

	// BASE: CRAFT shared data is never cached.
	if r.NonCached {
		pe.stats.NonCachedRefs++
		pe.now += mp.CraftSharedAccessCost
		if local {
			pe.now += mp.LocalReadCost // read-ahead buffered local DRAM read
			pe.stats.LocalReads++
			pe.record(addr, trace.KindLocalRead)
		} else {
			pe.chargeRemoteRead(addr, 1)
			pe.record(addr, trace.KindRemote)
		}
		v, g := m.Read(addr)
		pe.oracleCheck(r, addr, g)
		return v
	}

	// Bypass-cache fetch: stale read not worth prefetching, or dropped
	// prefetch (paper §3.2) — read memory directly around the cache.
	if r.Bypass {
		pe.stats.BypassReads++
		if local {
			pe.now += mp.LocalReadCost
			pe.stats.LocalReads++
			pe.record(addr, trace.KindLocalRead)
		} else {
			pe.chargeRemoteRead(addr, 1)
			pe.record(addr, trace.KindRemote)
		}
		v, g := m.Read(addr)
		pe.oracleCheck(r, addr, g)
		return v
	}

	// Forced-eviction fault: the line is knocked out (conflict with
	// interleaved private data) just before the processor consults it.
	if pe.fault != nil && pe.cache.Contains(addr) && pe.fault.EvictLine() {
		pe.cache.InvalidateRange(addr, addr)
	}

	// Cached path.
	demoted := false
	if val, gen, readyAt, hit := pe.cache.Lookup(addr); hit {
		pe.now += mp.HitCost
		if readyAt > pe.now {
			pe.now = readyAt
		}
		if pe.fault != nil && pe.eng.c.Mode != core.ModeIncoherent && gen != m.Gen(addr) {
			// Degraded mode: never consume a stale hit — drop the line
			// and fall through to a fresh demand fetch (§3.2).
			pe.cache.InvalidateRange(addr, addr)
			pe.demote()
			demoted = true
		} else {
			pe.oracleCheck(r, addr, gen)
			pe.record(addr, trace.KindHit)
			return val
		}
	}

	// Prefetch queue: the compiler scheduled this word ahead of time.
	if e, ok := pe.pq.Take(addr); ok {
		pe.now += mp.PrefetchExtractCost
		if e.ReadyAt > pe.now {
			pe.stats.PrefetchLate++
			pe.now = e.ReadyAt
		}
		if pe.fault != nil && pe.eng.c.Mode != core.ModeIncoherent && e.Gen != m.Gen(addr) {
			// Degraded mode: discard the stale entry, refetch below.
			pe.demote()
		} else {
			pe.oracleCheck(r, addr, e.Gen)
			pe.record(addr, trace.KindPrefetched)
			return e.Val
		}
	} else if r.Prefetched && !demoted {
		// A scheduled prefetch never arrived (queue overflow, or an
		// injected drop): the reference demotes to the demand fetch
		// below, which is exactly the paper's bypass fallback.
		pe.demote()
	}

	lineAddr := addr - addr%mp.LineWords
	if _, buf := pe.buffered[lineAddr]; local || buf {
		// Local miss (or a vector-buffered remote line): fill the line
		// from local DRAM.
		pe.now += mp.LocalMemCost
		pe.stats.LocalReads++
		pe.installLine(addr, pe.now)
		pe.record(addr, trace.KindMiss)
		v, g := m.Read(addr)
		pe.oracleCheck(r, addr, g)
		return v
	}

	// Remote word. The T3D does not cache remote memory: direct read —
	// except in the deliberately broken INCOHERENT mode, which caches it
	// with no coherence action (the failure the paper's scheme prevents).
	if pe.eng.c.Mode == core.ModeIncoherent {
		pe.chargeRemoteRead(addr, mp.LineWords) // caches it: a whole line crosses the wire
		pe.installLine(addr, pe.now)
		pe.record(addr, trace.KindRemote)
		v, g := m.Read(addr)
		pe.oracleCheck(r, addr, g)
		return v
	}
	pe.chargeRemoteRead(addr, 1)
	pe.record(addr, trace.KindRemote)
	v, g := m.Read(addr)
	pe.oracleCheck(r, addr, g)
	return v
}

// chargeRemoteRead advances the PE clock over one blocking remote read of
// `words` payload words from addr's home PE. Flat: the constant
// RemoteReadCost (plus any injected spike). Torus: a routed round trip
// whose latency depends on hop distance and link contention; an injected
// spike becomes a hotspot holding the home's reply link, so it also delays
// unrelated traffic routed through that link.
func (pe *peState) chargeRemoteRead(addr, words int64) {
	mp := pe.eng.c.Machine
	if net := pe.eng.net; net != nil {
		arrive, _ := net.RoundTrip(pe.id, pe.eng.mem.OwnerOf(addr), words, pe.now, pe.remoteSpike())
		pe.now = arrive
	} else {
		pe.now += mp.RemoteReadCost + pe.remoteSpike()
	}
	pe.stats.RemoteReads++
}

// chargeRemoteWrite charges one buffered, non-blocking remote store: the PE
// pays only the constant injection cost, but over a torus the store's
// packet is still booked along the route so it contends with other traffic.
func (pe *peState) chargeRemoteWrite(addr int64) {
	if net := pe.eng.net; net != nil {
		net.Send(pe.id, pe.eng.mem.OwnerOf(addr), 1, pe.now, 0)
	}
	pe.now += pe.eng.c.Machine.RemoteWriteCost
	pe.stats.RemoteWrites++
}

// oracleCheck is the coherence safety oracle: every word the simulated
// program consumes must carry memory's current generation for its address.
// The fast path is one atomic load and a compare.
func (pe *peState) oracleCheck(r *ir.Ref, addr int64, gen uint32) {
	if gen == pe.eng.mem.Gen(addr) {
		return
	}
	pe.eng.reportStale(pe, r, addr, gen)
}

// remoteSpike draws an injected remote-latency spike (0 when fault-free).
func (pe *peState) remoteSpike() int64 {
	if pe.fault == nil {
		return 0
	}
	return pe.fault.RemoteSpike()
}

// demote counts a bypass-fetch fallback and enforces the per-PE retry
// budget when faults are enabled. Exhausting the budget panics; the engine
// recovers it into a loud run failure naming the PE.
func (pe *peState) demote() {
	pe.stats.Demotions++
	pe.demoted++
	if pe.fault != nil && pe.demoted > pe.fault.MaxDemotions() {
		panic(fmt.Sprintf("fault: demotion budget exhausted after %d bypass fallbacks", pe.demoted))
	}
}

// writeRef performs a write (write-through, no-write-allocate).
func (pe *peState) writeRef(r *ir.Ref, v float64) {
	if r.IsScalar() {
		pe.scalars[r.Scalar] = v
		return
	}
	mp := pe.eng.c.Machine
	m := pe.eng.mem
	addr := pe.addrOf(r)
	if pe.writes != nil && r.Array.Shared {
		pe.writes[addr] = struct{}{}
	}
	local := m.OwnerOf(addr) == pe.id

	if pe.regs != nil {
		if _, ok := pe.regs[addr]; ok {
			pe.regs[addr] = v
		}
	}
	pe.record(addr, trace.KindWrite)
	gen := m.Write(addr, v)

	if r.NonCached {
		pe.stats.NonCachedRefs++
		pe.now += mp.CraftSharedAccessCost
		if local {
			pe.now += mp.LocalWriteCost
			pe.stats.LocalWrites++
		} else {
			pe.chargeRemoteWrite(addr)
		}
		return
	}
	if local {
		pe.now += mp.LocalWriteCost
		pe.stats.LocalWrites++
	} else {
		pe.chargeRemoteWrite(addr)
	}
	// Keep the writer's own cached copy current.
	pe.cache.UpdateWord(addr, v, gen)
}

// record emits one trace event when tracing is enabled.
func (pe *peState) record(addr int64, kind trace.Kind) {
	if pe.trace != nil {
		pe.trace.Record(addr, pe.now, kind)
	}
}

// installLine fills the cache line containing addr from memory.
func (pe *peState) installLine(addr int64, readyAt int64) {
	m := pe.eng.mem
	lw := pe.eng.c.Machine.LineWords
	la := addr - addr%lw
	vals := make([]float64, lw)
	gens := make([]uint32, lw)
	for k := int64(0); k < lw; k++ {
		if la+k < m.Words() {
			vals[k], gens[k] = m.Read(la + k)
		}
	}
	pe.cache.Install(la, vals, gens, readyAt)
}

// --- Prefetch operations ----------------------------------------------------

// issuePrefetch issues a single-word prefetch for the target at the current
// environment.
func (pe *peState) issuePrefetch(target *ir.Ref) {
	pe.issueAt(pe.addrOf(target))
}

// issuePrefetchAt issues a prefetch for the target with loop variable v
// bound to iteration it (software pipelining's future-iteration address).
func (pe *peState) issuePrefetchAt(target *ir.Ref, v string, it int64) {
	old, had := pe.env[v]
	pe.env[v] = it
	addr := pe.addrOf(target)
	if had {
		pe.env[v] = old
	} else {
		delete(pe.env, v)
	}
	pe.issueAt(addr)
}

func (pe *peState) issueAt(addr int64) {
	mp := pe.eng.c.Machine
	m := pe.eng.mem
	pe.now += mp.PrefetchIssueCost
	if pe.fault != nil && pe.fault.DropPrefetch() {
		// The prefetch packet is lost in flight: the issue cost is paid
		// but nothing arrives; the consuming read demotes (§3.2).
		return
	}
	var readyAt int64
	if owner := m.OwnerOf(addr); owner == pe.id {
		lat := mp.LocalMemCost
		if pe.fault != nil {
			lat += pe.fault.LateDelay()
		}
		readyAt = pe.now + lat
	} else if net := pe.eng.net; net != nil {
		arrive, wait := net.RoundTrip(pe.id, owner, 1, pe.now, 0)
		if wait > net.DropWaitCycles() {
			// Congestion timeout: the network held the prefetch longer than
			// the hardware keeps the request alive, so it never completes.
			// The consuming read will demote to a bypass fetch (§3.2).
			pe.stats.NetDrops++
			return
		}
		if pe.fault != nil {
			arrive += pe.fault.LateDelay()
		}
		readyAt = arrive
	} else {
		lat := mp.RemoteReadCost
		if pe.fault != nil {
			lat += pe.fault.LateDelay()
		}
		readyAt = pe.now + lat
	}
	v, g := m.Read(addr)
	pe.pq.Issue(pfq.Entry{Addr: addr, Val: v, Gen: g, ReadyAt: readyAt})
}

// vectorPrefetch performs one shmem_get realizing a vector prefetch over
// the pulled loop range [lo,hi] step step.
func (pe *peState) vectorPrefetch(vp *ir.VectorPrefetch, lo, hi, step int64) {
	if hi < lo {
		return
	}
	var addrs []int64
	old, had := pe.env[vp.LoopVar]
	for v := lo; v <= hi; v += step {
		pe.env[vp.LoopVar] = v
		addrs = append(addrs, pe.addrOf(vp.Target))
	}
	if had {
		pe.env[vp.LoopVar] = old
	} else {
		delete(pe.env, vp.LoopVar)
	}
	var lf *shmem.Faults
	if pe.fault != nil {
		lf = &shmem.Faults{DropLine: pe.fault.DropPrefetch, LateDelay: pe.fault.LateDelay}
	}
	cost, droppedLines := shmem.GetOverNet(pe.eng.mem, pe.cache, pe.eng.c.Machine, pe.eng.net, pe.id, addrs, pe.now, lf)
	pe.now += cost
	if pe.buffered == nil {
		pe.buffered = map[int64]struct{}{}
	}
	lw := pe.eng.c.Machine.LineWords
	for _, a := range addrs {
		la := a - a%lw
		if droppedLines[la] {
			// Lost in flight: the line is neither cached nor locally
			// buffered, so its reads fall back to demand remote fetches.
			continue
		}
		pe.buffered[la] = struct{}{}
	}
	pe.stats.VectorPrefetches++
	pe.stats.VectorWords += int64(len(addrs))
}
