package exec

import (
	"sync"

	"repro/internal/core"
	"repro/internal/fault"
)

// One-shot Run calls dominated the simulator's allocation profile: every
// call paid for BuildEpochGraph, compileProgram and a full machine's worth
// of per-PE arenas, then threw them away. The pool below parks idle engines
// on the Compiled program they were built for (via core.Compiled.Memo), so
// repeated Runs of the same compilation — the fuzzing campaign's replay
// loops, the equivalence tests' mode sweeps, the benchmarks — reuse every
// arena the Engine owns. BenchmarkEngineHotPathSWIMTorus64 measures this
// path; its steady state is the cost of detaching a Result plus whatever
// warm-up growth remains.

// maxIdleEngines bounds the engines parked per compilation. Concurrent
// Runs beyond the bound build fresh engines and drop them on return; one
// compilation's cache can never hold more than this many machines' worth
// of memory.
const maxIdleEngines = 4

// enginePool is the per-Compiled idle-engine cache. Parked engines hold no
// goroutines (put closes the worker pool first), so a pool that becomes
// garbage with its Compiled takes its engines with it.
type enginePool struct {
	mu   sync.Mutex
	idle []*Engine
}

func poolFor(c *core.Compiled) *enginePool {
	return c.Memo(func() any { return new(enginePool) }).(*enginePool)
}

func (p *enginePool) get() *Engine {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n := len(p.idle); n > 0 {
		e := p.idle[n-1]
		p.idle[n-1] = nil
		p.idle = p.idle[:n-1]
		return e
	}
	return nil
}

func (p *enginePool) put(e *Engine) {
	// Closing first keeps parked engines goroutine-free: a worker goroutine
	// is a GC root, and one parked on a pooled engine would keep the engine,
	// the pool and the Compiled reachable forever. The next Run's first
	// concurrent epoch respawns the workers.
	e.Close()
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.idle) < maxIdleEngines {
		p.idle = append(p.idle, e)
	}
}

// detach deep-copies everything in the Result that aliases engine-owned
// storage, so the engine can return to the pool (and be overwritten by its
// next Run) while the Result stays valid indefinitely.
func (r *Result) detach() *Result {
	if r == nil {
		return nil
	}
	out := *r
	out.PECycles = append([]int64(nil), r.PECycles...)
	out.Violations = append([]fault.Violation(nil), r.Violations...)
	if r.Mem != nil {
		out.Mem = r.Mem.Clone()
	}
	if r.Net != nil {
		out.Net = r.Net.Clone()
	}
	// StaleByRef is built fresh each Run; no copy needed.
	return &out
}
