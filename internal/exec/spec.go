// Optimistic torus epochs: speculate, validate against the canonical
// PE-major booking order, roll back and re-execute mis-speculations.
//
// The conservative PDES session (noc/pdes.go) makes every link booking wait
// until it is provably safe, so PEs spend much of a contended epoch blocked.
// The optimistic mode removes the waiting from the hot path entirely: each
// PE runs its whole epoch chunk against a PRIVATE predictor network (same
// topology, seeded empty every epoch) and records the transport calls it
// made with the results it assumed (noc.SpecRecorder). A serial validation
// pass then replays every PE's recorded ops onto the real network in the
// canonical PE-major order. Predictions that match commit for free; the
// first round-trip whose real arrival differs convicts the PE, whose state
// is rolled back to the epoch-entry snapshot and whose chunk is re-executed
// serially with the already-validated prefix served from a memo
// (memoTransport) and the rest booked live.
//
// Speculation races on memory as well as on link timing: chunks run
// concurrently against the one shared memory, so a chunk can capture a word
// another PE writes in the same epoch — directly (a consumed read) or as a
// bystander (a demand fill or vector get copies the whole line, neighbor
// words included, into the cache or prefetch queue with whatever value and
// generation the race happened to expose). The validation phase therefore
// first rewinds every PE's speculative writes (the undo log's pre-images,
// reverse PE-major, reverse program order), returning memory to its
// epoch-entry state, and then settles PEs in canonical PE-major order:
//
//   - Hazard conviction. A PE that consumed a word some OTHER PE wrote this
//     epoch read racing memory; its whole chunk is rolled back and
//     re-executed serially against live memory and the live network.
//     Conviction is deterministic even though the racy run was not: consume
//     and write ADDRESSES are data-independent up to the first racy read
//     (addresses are affine in induction variables), so the first
//     cross-PE-written word a chunk consumes is fixed by the program, and
//     one such word is all a conviction needs.
//   - Timing conviction. Otherwise the PE's recorded transport ops replay
//     onto the real network (noc.Network.ValidateOps); the first round trip
//     whose real arrival differs convicts the PE, which rolls back and
//     re-executes with the validated prefix memo-served and the rest booked
//     live.
//   - Clean commit. A PE convicted of neither produced canonical values and
//     timing; its writes reapply from the undo log's post-images (forward
//     order, so the newest write to an address wins), and the captured line
//     fills and prefetch-queue entries are repaired from what is now
//     canonical memory (repairPE) — its own writes excluded for the queue,
//     whose pre-write captures are genuine simulated behavior.
//
// Convergence: the engine consumes only round-trip results (arrival cycle,
// and whether the wait exceeded the drop threshold); Send results are
// discarded everywhere. When PE p settles, memory holds exactly the
// epoch-entry words plus the committed writes of PEs 0..p-1, and the
// network holds exactly their canonical bookings — precisely what the
// canonical serial run would present to p's chunk. A clean PE's state is
// canonical after repair by the hazard check's contrapositive (every word
// it consumed carried its canonical value, and every word it merely
// captured is repaired); a convicted PE's re-execution is canonical by
// construction. One re-execution per convicted PE suffices; there is no
// cascading rollback, and the fixed point is the canonical placement bit
// for bit.
package exec

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/noc"
	"repro/internal/pfq"
	"repro/internal/stats"
)

// Worker-pool job kinds. Method values and closures allocate per call; an
// int dispatched inside the worker does not, which keeps repeated Runs
// allocation-flat.
const (
	// jobChunk runs the PE's share of the epoch (speculative phase).
	jobChunk = iota + 1
	// jobSession is jobChunk plus releasing the PE's conservative-PDES
	// session slot, so commits blocked on a finished PE drain promptly.
	jobSession
)

// memUndo is one word of the speculative write log: the raw bits and
// generation the word held before this PE's write (mem.PeekBits, the
// rewind direction) and the ones the write stored (the reapply direction
// for clean commits). Bits survive NaN payloads a float64 copy could not.
type memUndo struct {
	addr            int64
	preBits         uint64
	postBits        uint64
	preGen, postGen uint32
}

// peSnap is a PE's epoch-entry state, captured before speculation and
// reinstated on rollback. Everything a chunk can mutate is covered: the
// clock, the per-PE stats, cache and prefetch queue, scalars and the
// variable environment. All buffers are engine-reused across epochs.
type peSnap struct {
	now     int64
	demoted int64
	stats   stats.Stats

	scalars       []float64
	scalarWritten []bool
	env           []int64
	bound         []bool

	cache cache.Snapshot
	pq    pfq.Snapshot
}

// save records pe's restorable state into s.
func (s *peSnap) save(pe *peState) {
	s.now, s.demoted, s.stats = pe.now, pe.demoted, pe.stats
	s.scalars = append(s.scalars[:0], pe.scalars...)
	s.scalarWritten = append(s.scalarWritten[:0], pe.scalarWritten...)
	s.env = append(s.env[:0], pe.env...)
	s.bound = append(s.bound[:0], pe.bound...)
	pe.cache.Save(&s.cache)
	pe.pq.Save(&s.pq)
}

// restore returns pe to the state save recorded. The register window, the
// vector-buffer line set and the vector address scratch are cleared rather
// than snapshotted: all three are empty at epoch entry (regs clear at every
// iteration boundary, the buffer resets at the preceding barrier).
func (s *peSnap) restore(pe *peState) {
	pe.now, pe.demoted, pe.stats = s.now, s.demoted, s.stats
	copy(pe.scalars, s.scalars)
	copy(pe.scalarWritten, s.scalarWritten)
	copy(pe.env, s.env)
	copy(pe.bound, s.bound)
	pe.cache.Restore(&s.cache)
	pe.pq.Restore(&s.pq)
	pe.clearRegs()
	pe.buffered.Reset()
	pe.vpAddrs = pe.vpAddrs[:0]
}

// memoTransport replays a convicted PE's validated op prefix during
// re-execution: the first len(ops) transport calls are served from the
// recorded (now canonical — ValidateOps overwrote them) results without
// booking anything, because ValidateOps already placed them on the real
// network; every call after the prefix books live. A kind or endpoint
// mismatch means re-execution diverged from the speculative run before the
// mispredicted op, which the convergence argument rules out — panic loudly.
type memoTransport struct {
	net *noc.Network
	ops []noc.SpecOp
	i   int
}

func (m *memoTransport) take(rt bool, from, to int) *noc.SpecOp {
	op := &m.ops[m.i]
	if op.RT != rt || int(op.From) != from || int(op.To) != to {
		panic(fmt.Sprintf("exec: re-execution diverged at op %d: got rt=%v %d->%d, recorded rt=%v %d->%d",
			m.i, rt, from, to, op.RT, op.From, op.To))
	}
	m.i++
	return op
}

func (m *memoTransport) Send(from, to int, payload, depart, hotExtra int64) (arrive, maxWait int64) {
	if m.i < len(m.ops) {
		op := m.take(false, from, to)
		return op.Arrive, op.Wait
	}
	return m.net.Send(from, to, payload, depart, hotExtra)
}

func (m *memoTransport) RoundTrip(src, dst int, payload, depart, hotExtra int64) (arrive, maxWait int64) {
	if m.i < len(m.ops) {
		op := m.take(true, src, dst)
		return op.Arrive, op.Wait
	}
	return m.net.RoundTrip(src, dst, payload, depart, hotExtra)
}

func (m *memoTransport) DropWaitCycles() int64 { return m.net.DropWaitCycles() }

// --- Worker pool -------------------------------------------------------------

// runPE executes PE p's share of the current parallel epoch (the loop is
// staged in e.curLoop by parallelEpoch). Shared by every execution branch:
// sequential, conservative PDES, optimistic speculation and re-execution,
// and the flat work-stealing fan-out.
func (e *Engine) runPE(p int) {
	defer func() {
		if r := recover(); r != nil {
			e.errs[p] = fmt.Errorf("PE %d: %v", p, r)
		}
	}()
	pe := e.pes[p]
	if e.opts.DetectRaces {
		if pe.raceRd == nil {
			pe.raceRd = bitset.NewSparse(e.mem.Words())
			pe.raceWr = bitset.NewSparse(e.mem.Words())
		}
		pe.reads = pe.raceRd
		pe.writes = pe.raceWr
	}
	switch e.c.Mode {
	case core.ModeBase:
		pe.now += e.c.Machine.CraftDosharedSetupCost
	case core.ModeCCDP:
		pe.now += e.c.Machine.CCDPLoopSetupCost
	}
	e.errs[p] = pe.runDoall(e.curLoop)
}

// worker is one parked pool goroutine; it owns PE p across the Engine's
// whole lifetime and runs the staged job kind each time it is woken.
func (e *Engine) worker(p int) {
	for range e.wake[p] {
		if e.poolJob == jobSession {
			e.runPESession(p)
		} else {
			e.runPE(p)
		}
		e.poolWG.Done()
	}
}

func (e *Engine) runPESession(p int) {
	// Done must fire even if runPE's recover machinery ever changes: other
	// PEs' commits may be blocked on this one's session slot.
	defer e.sess.Done(p)
	e.runPE(p)
}

// fanOut wakes one pool worker per PE for the staged job and waits for all
// of them. Workers are spawned once per Engine, on the first concurrent
// epoch, and park on their wake channels between epochs — repeated Runs
// spawn nothing.
func (e *Engine) fanOut(job int) {
	if e.wake == nil {
		e.wake = make([]chan struct{}, len(e.pes))
		for p := range e.wake {
			e.wake[p] = make(chan struct{}, 1)
			go e.worker(p)
		}
	}
	e.poolJob = job
	e.poolWG.Add(len(e.pes))
	for _, ch := range e.wake {
		ch <- struct{}{}
	}
	e.poolWG.Wait()
}

// Close releases the Engine's parked worker goroutines. Needed by callers
// that build Engines with New and want the goroutines gone while the Engine
// is idle — a parked worker is a GC root that keeps its Engine reachable
// (the per-Compiled pool in pool.go closes engines before parking them for
// exactly this reason). Close does not retire the Engine: a later Run's
// first concurrent epoch respawns the workers.
func (e *Engine) Close() {
	for _, ch := range e.wake {
		close(ch)
	}
	e.wake = nil
}

// --- Speculative epoch -------------------------------------------------------

// specEpoch runs one parallel torus epoch optimistically. Phases:
//
//  1. Snapshot every PE and point it at its private predictor recorder.
//  2. Run all PEs concurrently; each records its transport ops and its
//     memory captures (consumed words, installed lines, write log).
//  3. Rewind every PE's speculative writes, returning memory to its
//     epoch-entry state.
//  4. Serially, in PE-major order: convict on a read-write hazard or on the
//     first mispredicted round trip, roll the convict back and re-execute
//     its chunk serially (canonical by construction); commit a clean PE by
//     reapplying its writes and repairing its speculative captures from
//     canonical memory. See the package comment for the full argument.
//
// Under machine.PDESNoRollback (fuzz sabotage) the mispredicted timings
// survive and the recorded tail books as if it had validated, so per-PE
// timing silently diverges from the canonical order — the divergence the
// fuzz referee must flag. The capture repair still runs (against as-is
// memory, which then holds every PE's writes): the mutation breaks timing
// canonicalization specifically, not replay determinism.
func (e *Engine) specEpoch() {
	mp := e.c.Machine
	if e.recs == nil {
		preds, err := noc.NewFleet(domainTopo(mp), mp.NumPE, len(e.pes))
		if err != nil {
			// New validated the topology already; a failure here is an
			// engine bug, not an input error.
			panic(fmt.Sprintf("exec: predictor fleet: %v", err))
		}
		e.recs = make([]*noc.SpecRecorder, len(e.pes))
		for p := range e.recs {
			e.recs[p] = noc.NewSpecRecorder(preds[p])
		}
		e.memos = make([]memoTransport, len(e.pes))
	}
	e.beginMemSpec()
	for p, pe := range e.pes {
		e.recs[p].BeginEpoch()
		pe.tr = e.recs[p]
	}
	e.mem.SetSerial(false)
	e.fanOut(jobChunk)
	e.mem.SetSerial(true)

	for _, err := range e.errs {
		if err != nil {
			// A PE chunk failed (program bug): the run aborts before any
			// result is read, so skip validation and just de-speculate.
			for _, pe := range e.pes {
				pe.spec = false
				pe.tr = e.net
			}
			return
		}
	}

	if mp.PDESNoRollback {
		for p, pe := range e.pes {
			ops := e.recs[p].Ops
			if k := e.net.ValidateOps(ops); k < len(ops) {
				e.net.BookOps(ops[k+1:])
			}
			e.beginValidate(pe)
			e.repairPE(pe)
			e.commitPE(pe)
		}
		return
	}

	e.rewindMem()
	for p, pe := range e.pes {
		e.beginValidate(pe)
		switch ops := e.recs[p].Ops; {
		case e.hazard(pe):
			// The chunk consumed a word another PE was writing: every value
			// it computed is suspect, so none of its recorded ops validate.
			// Re-execution books its traffic live, in canonical position.
			e.specRollbacks++
			e.rollbackPE(p)
			pe.tr = e.net
			e.runPE(p)
			if e.errs[p] != nil {
				return
			}
		default:
			if k := e.net.ValidateOps(ops); k < len(ops) {
				e.specRollbacks++
				e.rollbackPE(p)
				m := &e.memos[p]
				*m = memoTransport{net: e.net, ops: ops[:k+1]}
				pe.tr = m
				e.runPE(p)
				if e.errs[p] != nil {
					// Should be impossible (the speculative run of the same
					// chunk succeeded), but don't mask it if it happens.
					return
				}
			} else {
				// Clean: reapply this PE's writes (forward, newest last),
				// then repair its speculative captures from what is now
				// canonical memory.
				for i := range pe.undo {
					u := &pe.undo[i]
					e.mem.RestoreBits(u.addr, u.postBits, u.postGen)
				}
				e.repairPE(pe)
			}
		}
		e.commitPE(pe)
	}
}

// beginMemSpec snapshots every PE, arms its capture logs and marks it
// speculative — the memory half of the speculation setup, shared by the
// optimistic torus epoch and the flat concurrent epoch.
func (e *Engine) beginMemSpec() {
	if e.snaps == nil {
		e.snaps = make([]peSnap, len(e.pes))
		words := e.mem.Words()
		e.wAll = bitset.NewSparse(words)
		e.wrote = bitset.NewSparse(words)
		for _, pe := range e.pes {
			pe.consumed = bitset.NewSparse(words)
		}
	}
	for p, pe := range e.pes {
		e.snaps[p].save(pe)
		pe.spec = true
		pe.consumed.Reset()
		pe.filled = pe.filled[:0]
	}
}

// rewindMem returns memory to its epoch-entry state (reverse PE-major,
// reverse program order, so interleaved multi-write histories unwind
// cleanly) and rebuilds the epoch write set.
func (e *Engine) rewindMem() {
	for p := len(e.pes) - 1; p >= 0; p-- {
		undo := e.pes[p].undo
		for i := len(undo) - 1; i >= 0; i-- {
			u := &undo[i]
			e.mem.RestoreBits(u.addr, u.preBits, u.preGen)
		}
	}
	e.wAll.Reset()
	for _, pe := range e.pes {
		for i := range pe.undo {
			e.wAll.Add(pe.undo[i].addr)
		}
	}
}

// settleFlat is the flat concurrent epoch's serial settlement: there is no
// link state, so a PE is settled by hazard conviction (rollback plus serial
// re-execution against live memory) or by a clean redo-and-repair commit —
// the memory half of specEpoch's protocol, with nothing to time-validate.
func (e *Engine) settleFlat() {
	for _, err := range e.errs {
		if err != nil {
			// A PE chunk failed (program bug): the run aborts before any
			// result is read, so skip settlement and just de-speculate.
			for _, pe := range e.pes {
				pe.spec = false
			}
			return
		}
	}
	e.rewindMem()
	for p, pe := range e.pes {
		e.beginValidate(pe)
		if e.hazard(pe) {
			e.specRollbacks++
			e.rollbackPE(p)
			e.runPE(p)
			if e.errs[p] != nil {
				return
			}
		} else {
			for i := range pe.undo {
				u := &pe.undo[i]
				e.mem.RestoreBits(u.addr, u.postBits, u.postGen)
			}
			e.repairPE(pe)
		}
		e.commitPE(pe)
	}
}

// beginValidate stages PE pe's own epoch write set into e.wrote (the hazard
// check excludes it; the queue repair skips it).
func (e *Engine) beginValidate(pe *peState) {
	e.wrote.Reset()
	for i := range pe.undo {
		e.wrote.Add(pe.undo[i].addr)
	}
}

// hazard reports whether pe consumed a word some other PE wrote in this
// epoch — a cross-PE read-write race speculation cannot have resolved
// canonically. One pass over the PE's consumed set against the epoch write
// set keeps the whole phase O(reads + writes) per epoch.
func (e *Engine) hazard(pe *peState) bool {
	for _, a := range pe.consumed.Members() {
		if e.wAll.Contains(a) && !e.wrote.Contains(a) {
			return true
		}
	}
	return false
}

// repairPE replaces pe's speculatively captured line fills and
// prefetch-queue entries with their canonical contents, read from memory as
// it stands at the PE's settlement turn. Queue entries for the PE's own
// epoch writes are left alone: an entry issued ahead of the write holds the
// pre-write word in the canonical order too (the prefetched-too-early
// hazard the paper's scheduler exists to avoid), and one issued after it
// already holds the post-write word.
func (e *Engine) repairPE(pe *peState) {
	m := e.mem
	lw := e.c.Machine.LineWords
	vals, gens := pe.shScratch.LineBuffers()
	for _, la := range pe.filled {
		for k := int64(0); k < lw; k++ {
			if la+k < m.Words() {
				vals[k], gens[k] = m.Read(la + k)
			} else {
				vals[k], gens[k] = 0, 0
			}
		}
		pe.cache.Refresh(la, vals, gens)
	}
	for i, ents := 0, pe.pq.Entries(); i < len(ents); i++ {
		en := &ents[i]
		if e.wrote.Contains(en.Addr) {
			continue
		}
		en.Val, en.Gen = m.Read(en.Addr)
	}
}

// rollbackPE discards PE p's speculative epoch: the capture logs and
// buffered state drop, and the epoch-entry snapshot is reinstated. Memory
// needs no undoing here — specEpoch rewound every PE's writes wholesale
// before validation began.
func (e *Engine) rollbackPE(p int) {
	pe := e.pes[p]
	pe.undo = pe.undo[:0]
	pe.pendViol = pe.pendViol[:0]
	pe.consumed.Reset()
	pe.filled = pe.filled[:0]
	e.snaps[p].restore(pe)
}

// commitPE finalizes a PE's (now canonical) epoch: buffered oracle
// violations merge into the engine's record in deterministic PE-major
// order, and the PE returns to the real network transport.
func (e *Engine) commitPE(pe *peState) {
	for i := range pe.pendViol {
		if len(e.violations) < maxRecordedViolations {
			e.violations = append(e.violations, pe.pendViol[i])
		}
		if e.opts.FailOnStale && e.staleErr == nil {
			e.staleErr = fmt.Errorf("exec: %v", pe.pendViol[i])
		}
	}
	pe.pendViol = pe.pendViol[:0]
	pe.undo = pe.undo[:0]
	pe.spec = false
	// The engine default, NOT e.net: a flat engine's nil *Network must not
	// become a typed-nil Transport the hot paths would then call through.
	pe.tr = e.tr
}

// SpecRollbacks reports how many PE-epochs the optimistic mode rolled back
// and re-executed across the Engine's lifetime of Runs. Observability only
// (wall-clock cost attribution and test non-vacuity); never part of
// simulation results, which rollbacks by construction do not affect.
func (e *Engine) SpecRollbacks() int64 { return e.specRollbacks }

// Compile-time interface checks: both speculative transports must satisfy
// the contract the PE hot paths charge through.
var (
	_ noc.Transport = (*noc.SpecRecorder)(nil)
	_ noc.Transport = (*memoTransport)(nil)
)
